#include "serve/protocol.hpp"

#include "util/check.hpp"
#include "util/json.hpp"

namespace ndet::serve {

const char* to_string(RequestType type) {
  switch (type) {
    case RequestType::kWorstCase: return "worst_case";
    case RequestType::kAverageCase: return "average_case";
    case RequestType::kPartition: return "partition";
    case RequestType::kStats: return "stats";
    case RequestType::kPing: return "ping";
    case RequestType::kHealth: return "health";
  }
  return "ping";
}

Priority parse_priority(const std::string& name) {
  if (name == "interactive") return Priority::kInteractive;
  if (name == "batch") return Priority::kBatch;
  throw Error(ErrorKind::kInvalidInput,
              "unknown priority '" + name +
                  "' (expected interactive or batch)");
}

namespace {

RequestType parse_type(const std::string& name) {
  if (name == "worst_case") return RequestType::kWorstCase;
  if (name == "average_case") return RequestType::kAverageCase;
  if (name == "partition") return RequestType::kPartition;
  if (name == "stats") return RequestType::kStats;
  if (name == "ping") return RequestType::kPing;
  if (name == "health") return RequestType::kHealth;
  throw Error(ErrorKind::kInvalidInput,
              "unknown request type '" + name +
                  "' (expected worst_case, average_case, partition, stats, "
                  "ping or health)");
}

SetRepresentation parse_representation(const std::string& name) {
  if (name == "adaptive") return SetRepresentation::kAdaptive;
  if (name == "dense") return SetRepresentation::kDense;
  if (name == "sparse") return SetRepresentation::kSparse;
  throw Error(ErrorKind::kInvalidInput,
              "unknown representation '" + name +
                  "' (expected adaptive, dense or sparse)");
}

DetectionDefinition parse_definition(const std::string& name) {
  if (name == "standard") return DetectionDefinition::kStandard;
  if (name == "dissimilar") return DetectionDefinition::kDissimilar;
  throw Error(ErrorKind::kInvalidInput,
              "unknown definition '" + name +
                  "' (expected standard or dissimilar)");
}

/// The full key vocabulary per request type; anything else is rejected so a
/// misspelled option fails loudly instead of silently running defaults.
bool key_allowed(RequestType type, const std::string& key) {
  if (key == "id" || key == "type" || key == "priority") return true;
  if (type == RequestType::kStats || type == RequestType::kPing ||
      type == RequestType::kHealth)
    return false;
  if (key == "circuit" || key == "deadline_ms" || key == "max_inputs" ||
      key == "representation")
    return true;
  if (type == RequestType::kAverageCase)
    return key == "nmax" || key == "num_sets" || key == "seed" ||
           key == "definition" || key == "def2_probe_limit" ||
           key == "keep_test_sets";
  if (type == RequestType::kPartition)
    return key == "budget" || key == "by_structure" || key == "min_overlap";
  return false;
}

}  // namespace

Request parse_request(const std::string& line) {
  const json::Value root = json::parse(line);
  if (!root.is_object())
    throw Error(ErrorKind::kInvalidInput, "request must be a JSON object");

  Request request;
  if (const json::Value* id = root.find("id")) request.id = id->as_uint64();
  request.type = parse_type(root.at("type").as_string());
  if (const json::Value* v = root.find("priority"))
    request.priority = parse_priority(v->as_string());

  for (const json::Value::Member& member : root.as_object()) {
    if (!key_allowed(request.type, member.first))
      throw Error(ErrorKind::kInvalidInput,
                  "unknown key '" + member.first + "' for request type '" +
                      to_string(request.type) + "'");
  }

  if (request.type == RequestType::kStats ||
      request.type == RequestType::kPing ||
      request.type == RequestType::kHealth)
    return request;

  request.circuit = root.at("circuit").as_string();
  if (request.circuit.empty())
    throw Error(ErrorKind::kInvalidInput, "circuit must not be empty");
  request.key.circuit = request.circuit;
  if (const json::Value* v = root.find("deadline_ms"))
    request.deadline_ms = v->as_uint64();
  if (const json::Value* v = root.find("max_inputs")) {
    const std::int64_t max_inputs = v->as_int64();
    require(max_inputs >= 1 && max_inputs <= 30,
            "max_inputs must be in [1, 30]");
    request.key.max_inputs = static_cast<int>(max_inputs);
  }
  if (const json::Value* v = root.find("representation"))
    request.key.representation = parse_representation(v->as_string());

  if (request.type == RequestType::kAverageCase) {
    if (const json::Value* v = root.find("nmax")) {
      const std::int64_t nmax = v->as_int64();
      require(nmax >= 1 && nmax <= 1000, "nmax must be in [1, 1000]");
      request.nmax = static_cast<int>(nmax);
    }
    request.average.nmax = request.nmax;
    if (const json::Value* v = root.find("num_sets")) {
      request.average.num_sets = static_cast<std::size_t>(v->as_uint64());
      require(request.average.num_sets >= 1, "num_sets must be >= 1");
    }
    if (const json::Value* v = root.find("seed"))
      request.average.seed = v->as_uint64();
    if (const json::Value* v = root.find("definition"))
      request.average.definition = parse_definition(v->as_string());
    if (const json::Value* v = root.find("def2_probe_limit"))
      request.average.def2_probe_limit =
          static_cast<std::size_t>(v->as_uint64());
    if (const json::Value* v = root.find("keep_test_sets"))
      request.average.keep_test_sets = v->as_bool();
  } else if (request.type == RequestType::kPartition) {
    if (const json::Value* v = root.find("budget")) {
      request.partition.max_inputs = static_cast<std::size_t>(v->as_uint64());
      require(request.partition.max_inputs >= 1, "budget must be >= 1");
    }
    if (const json::Value* v = root.find("by_structure"))
      request.partition.by_structure = v->as_bool();
    if (const json::Value* v = root.find("min_overlap"))
      request.partition.min_overlap = v->as_double();
  }
  return request;
}

std::string ok_response(const Request& request, const std::string& result_json,
                        const SessionStats& session, bool cache_hit,
                        double elapsed_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(request.id);
  w.key("ok").value(true);
  w.key("type").value(to_string(request.type));
  w.key("circuit").value(request.circuit);
  w.key("cache_hit").value(cache_hit);
  w.key("elapsed_ms").value(elapsed_ms);
  w.key("result").raw(result_json);
  w.key("session").raw(to_json(session));
  w.end_object();
  return w.str();
}

std::string ok_response(const Request& request, const std::string& result_json,
                        double elapsed_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(request.id);
  w.key("ok").value(true);
  w.key("type").value(to_string(request.type));
  w.key("elapsed_ms").value(elapsed_ms);
  w.key("result").raw(result_json);
  w.end_object();
  return w.str();
}

std::string error_response(std::uint64_t id, std::string_view type_name,
                           const Error& e, double elapsed_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(false);
  w.key("type").value(type_name);
  w.key("error")
      .begin_object()
      .key("kind")
      .value(ndet::to_string(e.kind()))
      .key("stage")
      .value(e.stage())
      .key("message")
      .value(e.what())
      .end_object();
  w.key("elapsed_ms").value(elapsed_ms);
  w.end_object();
  return w.str();
}

std::string shed_response(std::uint64_t id, std::string_view type_name,
                          const std::string& message,
                          std::uint64_t retry_after_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(false);
  w.key("type").value(type_name);
  w.key("error")
      .begin_object()
      .key("kind")
      .value(ndet::to_string(ErrorKind::kResourceExhausted))
      .key("stage")
      .value("serve.admission")
      .key("message")
      .value(message)
      .key("retry_after_ms")
      .value(retry_after_ms)
      .end_object();
  w.key("elapsed_ms").value(0.0);
  w.end_object();
  return w.str();
}

bool is_shed_response(const std::string& response) {
  return response.find("\"kind\":\"resource_exhausted\"") !=
             std::string::npos &&
         response.find("\"retry_after_ms\":") != std::string::npos;
}

std::uint64_t retry_after_ms_of(const std::string& response) {
  const std::string key = "\"retry_after_ms\":";
  const std::size_t at = response.find(key);
  if (at == std::string::npos) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = at + key.size();
       i < response.size() && response[i] >= '0' && response[i] <= '9'; ++i)
    value = value * 10 + static_cast<std::uint64_t>(response[i] - '0');
  return value;
}

}  // namespace ndet::serve
