// admission.hpp -- the daemon's bounded, priority-laned admission queue
// and its shedding policy.
//
// The acceptor -> queue -> dispatcher path of PR 9 had an implicit,
// transport-local buffer with no shedding story: a hostile client could
// queue unbounded work and a polite one behind it starved.  This queue is
// the explicit admission point: it is bounded by DEPTH (queued lines) and
// BYTES (summed line lengths), split into two priority lanes
// (`interactive` ahead of `batch`), and it NEVER silently drops -- every
// offered line either enters the queue or is returned to the caller
// (rejected, or displaced to make room for higher-priority work), and the
// caller owes exactly one typed `ResourceExhausted` response for each
// returned line.
//
// Shedding policy (reject-newest, priority-honoring):
//   * An offer that fits both bounds is admitted.
//   * An offer that would exceed a bound is REJECTED (the newest work
//     loses -- queued work is never abandoned once admitted)...
//   * ...unless the offer is `interactive` and the batch lane is
//     non-empty: then the NEWEST batch entries are displaced until the
//     offer fits, so cheap interactive requests survive a flood of heavy
//     batch sweeps.  Displaced entries are handed back to the caller,
//     which answers each with the same typed shed response -- displacement
//     moves the rejection, it never loses a line.
//
// Dispatch order is deterministic at the queue level: strictly
// interactive-first, FIFO (admission sequence) within each lane.  A batch
// flood therefore cannot starve interactive work; the converse starvation
// is accepted by design and documented (DESIGN.md "Overload and
// lifecycle").
//
// Concurrency: one mutex, two condition-free lanes (offers never block --
// admission control means telling the client NOW, not making it wait);
// pop() blocks dispatchers until work or close().

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace ndet::serve {

/// The protocol's two-level request priority.  `interactive` is the
/// default: cheap, latency-sensitive work (stats, health, small analyses).
/// Heavy worst-case sweeps should declare `"priority":"batch"`.
enum class Priority { kInteractive = 0, kBatch = 1 };

/// Stable wire name ("interactive" / "batch").
const char* to_string(Priority priority);

/// One admitted request line.  `respond` delivers the response line to the
/// line's transport and MUST be invoked exactly once per line -- the
/// exactly-one-response invariant the chaos suite asserts.
struct AdmittedLine {
  std::string line;
  Priority priority = Priority::kInteractive;
  std::uint64_t id = 0;       ///< parsed request id (0 when unparseable)
  std::string type_name;      ///< parsed request type ("unknown" otherwise)
  std::uint64_t sequence = 0; ///< admission order, assigned by offer()
  std::chrono::steady_clock::time_point enqueued_at;
  std::function<void(std::string&&)> respond;
};

/// Cumulative admission telemetry (all counters monotone since
/// construction except depth/bytes, which are current residency).
struct AdmissionStats {
  std::size_t depth = 0;            ///< currently queued lines
  std::size_t bytes = 0;            ///< currently queued bytes
  std::size_t peak_depth = 0;       ///< high-water mark of depth
  std::uint64_t admitted = 0;       ///< offers that entered the queue
  std::uint64_t shed_interactive = 0;  ///< rejected interactive offers
  std::uint64_t shed_batch = 0;        ///< rejected batch offers
  std::uint64_t displaced = 0;      ///< batch entries evicted for interactive
};

class AdmissionQueue {
 public:
  /// `max_depth` bounds queued lines, `max_bytes` bounds their summed
  /// sizes (0 = unbounded for either).
  AdmissionQueue(std::size_t max_depth, std::size_t max_bytes);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Offers one line for admission; never blocks.  Returns true when the
  /// line was admitted (moved from `line`).  Returns false when it was
  /// shed (reject-newest): `line` is left intact -- responder included --
  /// and the caller owes it a typed shed response.  Either way, every
  /// batch entry displaced to admit an interactive offer is appended to
  /// `displaced`, and the caller owes each of those a shed response too.
  /// After close(), every offer is shed.
  bool offer(AdmittedLine& line, std::vector<AdmittedLine>* displaced);

  /// Blocks until a line is available (interactive lane first, FIFO within
  /// a lane) or the queue is closed and empty; false on the latter.
  bool pop(AdmittedLine& out);

  /// Non-blocking pop for drain loops; false when empty.
  bool try_pop(AdmittedLine& out);

  /// Stops admission and wakes every blocked pop().  Already-queued lines
  /// still pop: close() starts the drain, it does not drop work.
  void close();

  bool closed() const;

  AdmissionStats stats() const;

  /// Current depth (both lanes); the overload signal for health reports
  /// and retry hints.
  std::size_t depth() const;

 private:
  bool fits_locked(std::size_t line_bytes) const;

  const std::size_t max_depth_;
  const std::size_t max_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<AdmittedLine> interactive_;
  std::deque<AdmittedLine> batch_;
  AdmissionStats stats_;
  std::uint64_t sequence_ = 0;
  bool closed_ = false;
};

}  // namespace ndet::serve
