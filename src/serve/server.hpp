// server.hpp -- ndetd's request engine: admission, dispatch, telemetry.
//
// Threading model (documented in DESIGN.md "Analysis as a service"):
//
//   acceptor --> bounded queue --> dispatchers --> session cache --> pool
//
// One ACCEPTOR thread reads request lines (stdin or a TCP connection) and
// enqueues them; `concurrency` DISPATCHER threads drain the queue, each
// running handle_line() -- parse, lease the circuit's cached session, run
// the requested stage, respond -- and write responses under one output
// mutex (ids let clients match pipelined responses out of order).  Requests
// for different circuits run concurrently; requests for the same cache key
// serialize on the entry's lease.  The thread-width budget is split so the
// machine is never oversubscribed: each cached session's fork-join pool is
// `threads / concurrency` wide (the same outer/inner split run_batch uses).
//
// Per-request deadlines arm a FRESH CancelToken chained under the server's
// lifetime token (shutdown() cancels in-flight work), and the session is
// rearm()ed with it for the duration of the lease.  Failures map onto the
// typed error taxonomy in the response envelope; an aborted stage never
// populates its memo slot, so a deadline'd request can never poison the
// cache -- the next request for the key simply reruns the stage.
//
// handle_line() is synchronous and thread-safe, so embedders (tests, the
// in-process load generator) can drive the server without any I/O plumbing.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "serve/protocol.hpp"
#include "serve/session_cache.hpp"

namespace ndet::serve {

/// Log-bucketed latency histogram (lock-free record, ~1.47x bucket growth
/// from 1us).  Percentiles report the upper edge of the covering bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double seconds);
  std::uint64_t count() const;
  /// Upper edge, in milliseconds, of the bucket containing the p-quantile
  /// (p in [0,1]); 0 when empty.
  double percentile_ms(double p) const;
  /// Upper edge of bucket i in milliseconds (for the stats export).
  static double bucket_upper_ms(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

struct ServerOptions {
  std::size_t cache_bytes = 64u << 20;  ///< LRU byte budget (0 = unbounded)
  unsigned concurrency = 4;             ///< dispatcher threads
  unsigned threads = 0;  ///< total pool-width budget; 0 = all hardware
  int max_inputs = 20;   ///< default per-request exhaustive budget
  SetRepresentation representation = SetRepresentation::kAdaptive;
  std::size_t max_line_bytes = 1u << 20;  ///< admission cap per request line
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Handles one request line end to end and returns the response line
  /// (without trailing newline).  Never throws: every failure becomes an
  /// error response.  Thread-safe.
  std::string handle_line(const std::string& line);

  /// Like handle_line, also reporting the error kind of a failed request
  /// (disengaged on success) -- the --oneshot exit-code path.
  std::string handle_line(const std::string& line,
                          std::optional<ErrorKind>* failure);

  /// Acceptor + dispatcher loop over a stream pair; returns at EOF after
  /// all responses are flushed.
  void serve_stream(std::istream& in, std::ostream& out);

  /// TCP listener on 127.0.0.1:`port` (0 = ephemeral); `ready` is invoked
  /// with the bound port before accepting.  One connection handler thread
  /// per client, each running the line loop.  Returns after shutdown().
  void serve_tcp(int port, const std::function<void(int)>& ready = {});

  /// Cancels the lifetime token (in-flight requests abort as Cancelled) and
  /// wakes the accept loop.
  void shutdown();

  /// The server-wide counters as a JSON object (the "stats" response body).
  std::string stats_json() const;

  SessionCache& cache() { return cache_; }
  const std::shared_ptr<CancelToken>& lifetime_token() const {
    return lifetime_;
  }

 private:
  struct TypeCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> errors{0};
    LatencyHistogram latency;
  };

  std::string run_request(const Request& request,
                          std::optional<ErrorKind>* failure);
  TypeCounters& counters_for(RequestType type);

  ServerOptions options_;
  SessionOptions session_base_;
  SessionCache cache_;
  std::shared_ptr<CancelToken> lifetime_;
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::array<TypeCounters, 5> by_type_{};  ///< indexed by RequestType
  std::atomic<int> listen_fd_{-1};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace ndet::serve
