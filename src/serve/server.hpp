// server.hpp -- ndetd's request engine: admission, dispatch, telemetry,
// and lifecycle.
//
// Threading model (documented in DESIGN.md "Analysis as a service" and
// "Overload and lifecycle"):
//
//   acceptor --> admission queue --> dispatchers --> session cache --> pool
//
// ACCEPTOR threads (stdin reader or TCP connection handlers) submit()
// request lines; admission is bounded by depth and bytes with an explicit
// priority-laned shedding policy (serve/admission.hpp): a line either
// enters the queue or gets a typed ResourceExhausted response carrying a
// `retry_after_ms` hint -- never a silent drop.  `concurrency` DISPATCHER
// threads drain the queue interactive-lane-first, each running
// handle_line() -- parse, lease the circuit's cached session, run the
// requested stage, respond through the line's transport responder.
// Requests for different circuits run concurrently; requests for the same
// cache key serialize on the entry's lease (interactive acquires first).
// The thread-width budget is split so the machine is never oversubscribed:
// each cached session's fork-join pool is `threads / concurrency` wide
// (the same outer/inner split run_batch uses).
//
// Lifecycle: request_drain() (async-signal-safe) or begin_drain() moves
// the server from SERVING to DRAINING -- admission stops (new analysis
// lines are shed as "draining"; ping/stats/health still answer so load
// balancers see the state flip), already-admitted work finishes under a
// `drain_ms` budget (the drain deadline is armed onto every in-flight and
// later-created request token, labeled "drain budget" so responses
// distinguish it from per-request deadlines), and wait_drained() blocks
// until every accepted line has its response.  This is distinct from hard
// shutdown(), which cancels the lifetime token and aborts in-flight work
// as Cancelled.
//
// Per-request deadlines arm a FRESH CancelToken chained under the server's
// lifetime token, and the session is rearm()ed with it for the duration of
// the lease.  Failures map onto the typed error taxonomy in the response
// envelope; an aborted stage never populates its memo slot, so a
// deadline'd request can never poison the cache -- the next request for
// the key simply reruns the stage.
//
// handle_line() is synchronous and thread-safe, so embedders (tests, the
// in-process load generator) can drive the server without any I/O
// plumbing; submit() is the admission-controlled path the transports use.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/session_cache.hpp"

namespace ndet::serve {

/// Log-bucketed latency histogram (lock-free record, ~1.47x bucket growth
/// from 1us).  Percentiles report the upper edge of the covering bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double seconds);
  std::uint64_t count() const;
  /// Upper edge, in milliseconds, of the bucket containing the p-quantile
  /// (p in [0,1]); 0 when empty.
  double percentile_ms(double p) const;
  /// Upper edge of bucket i in milliseconds (for the stats export).
  static double bucket_upper_ms(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// The drain state machine: SERVING -> DRAINING -> STOPPED, one-way.
enum class ServerState { kServing, kDraining, kStopped };

/// Stable wire name ("serving" / "draining" / "stopped").
const char* to_string(ServerState state);

struct ServerOptions {
  std::size_t cache_bytes = 64u << 20;  ///< LRU byte budget (0 = unbounded)
  unsigned concurrency = 4;             ///< dispatcher threads
  unsigned threads = 0;  ///< total pool-width budget; 0 = all hardware
  int max_inputs = 20;   ///< default per-request exhaustive budget
  SetRepresentation representation = SetRepresentation::kAdaptive;
  std::size_t max_line_bytes = 1u << 20;  ///< admission cap per request line
  std::size_t max_queue_depth = 256;   ///< admission depth bound (0 = off)
  std::size_t max_queue_bytes = 8u << 20;  ///< admission byte bound (0 = off)
  unsigned max_connections = 64;  ///< concurrent TCP clients (0 = unbounded)
  std::uint64_t drain_ms = 5000;  ///< drain budget for in-flight work
};

class Server {
 public:
  /// Delivers one response line (no trailing newline) to the transport.
  /// Invoked exactly once per submitted line.
  using Responder = std::function<void(std::string&&)>;

  explicit Server(ServerOptions options = {});

  /// Joins dispatchers after draining the queue: every admitted line still
  /// gets its response (as Cancelled errors once shutdown() ran).
  ~Server();

  /// Handles one request line end to end and returns the response line
  /// (without trailing newline).  Never throws: every failure becomes an
  /// error response.  Thread-safe.  Bypasses admission control EXCEPT for
  /// drain mode: once draining, analysis requests are shed (ping, stats
  /// and health still answer).
  std::string handle_line(const std::string& line);

  /// Like handle_line, also reporting the error kind of a failed request
  /// (disengaged on success) -- the --oneshot exit-code path.
  std::string handle_line(const std::string& line,
                          std::optional<ErrorKind>* failure);

  /// The admission-controlled path: sheds when the queue is full (typed
  /// ResourceExhausted + retry_after_ms, priority-honoring displacement)
  /// or the server is draining; otherwise enqueues for the dispatcher
  /// pool.  `respond` is invoked exactly once -- synchronously for sheds
  /// and for ping/stats/health (which must stay answerable under
  /// overload), later on a dispatcher thread otherwise.  Returns true when
  /// the line was admitted to the queue (false = answered synchronously).
  bool submit(std::string line, Responder respond);

  /// Acceptor + dispatcher loop over a stream pair; returns at EOF (after
  /// all responses are flushed) or after request_drain().  False when a
  /// drain timed out with work still un-responded.
  bool serve_stream(std::istream& in, std::ostream& out);

  /// TCP listener on 127.0.0.1:`port` (0 = ephemeral); `ready` is invoked
  /// with the bound port before accepting.  One connection handler thread
  /// per client up to `max_connections` (excess connections receive a
  /// single ResourceExhausted response line and are closed).  Handlers are
  /// joined before returning.  Returns after shutdown() or a completed
  /// drain; false when the drain timed out.
  bool serve_tcp(int port, const std::function<void(int)>& ready = {});

  /// Async-signal-safe drain trigger (one atomic store): the transport
  /// loops observe it and run begin_drain().  SIGTERM/SIGINT handlers call
  /// this.
  void request_drain() { drain_requested_.store(true, std::memory_order_release); }

  bool drain_requested() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// SERVING -> DRAINING: stops admitting analysis work and arms the
  /// drain-budget deadline (labeled "drain budget") on every in-flight
  /// request token.  Idempotent.
  void begin_drain();

  /// Blocks until every accepted line has been responded to, or
  /// `timeout_ms` passed (0 = wait forever).  On success flips the state
  /// to STOPPED and stops the dispatchers.  True = fully drained.
  bool wait_drained(std::uint64_t timeout_ms);

  ServerState state() const { return state_.load(std::memory_order_acquire); }

  /// Cancels the lifetime token (in-flight requests abort as Cancelled) and
  /// wakes the accept loop.  The hard stop; see begin_drain for the
  /// graceful one.
  void shutdown();

  /// The server-wide counters as a JSON object (the "stats" response body).
  std::string stats_json() const;

  /// The "health" response body: {"state":"serving|draining|overloaded",
  /// "queue_depth":...,"connections":...,"retry_after_ms":...}.  The state
  /// reports "overloaded" while serving with the queue past its high-water
  /// mark, so load balancers can back off before shedding starts.
  std::string health_json() const;

  /// The server's current backoff hint: expected queue wait derived from
  /// an EWMA of service time and the live queue depth, clamped to
  /// [1, 30000] ms.
  std::uint64_t retry_after_hint_ms() const;

  SessionCache& cache() { return cache_; }
  const std::shared_ptr<CancelToken>& lifetime_token() const {
    return lifetime_;
  }
  AdmissionStats admission_stats() const { return queue_.stats(); }
  std::uint64_t rejected_connections() const {
    return rejected_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct TypeCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> errors{0};
    LatencyHistogram latency;
  };

  std::string process_line(const std::string& line,
                           std::optional<ErrorKind>* failure,
                           bool admitted_before_drain);
  std::string run_request(const Request& request,
                          std::optional<ErrorKind>* failure,
                          bool admitted_before_drain);
  TypeCounters& counters_for(RequestType type);
  void ensure_dispatchers();
  void dispatch_loop();
  void stop_dispatchers();
  /// Wraps a transport responder with the pending-line accounting behind
  /// wait_drained()/serve_stream teardown.
  Responder track(Responder respond);
  void record_service(double seconds);
  bool overloaded() const;

  ServerOptions options_;
  SessionOptions session_base_;
  SessionCache cache_;
  std::shared_ptr<CancelToken> lifetime_;
  AdmissionQueue queue_;
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::array<TypeCounters, kNumRequestTypes> by_type_{};
  std::array<TypeCounters, 2> by_priority_{};  ///< indexed by Priority
  std::atomic<int> listen_fd_{-1};
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<ServerState> state_{ServerState::kServing};
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::int64_t> drain_deadline_ns_{0};  ///< set by begin_drain
  std::atomic<std::int64_t> pending_{0};  ///< admitted lines awaiting response
  std::mutex drain_mutex_;
  std::condition_variable drained_cv_;

  std::mutex dispatcher_mutex_;
  std::vector<std::thread> dispatchers_;
  bool dispatchers_stopped_ = false;

  std::mutex active_mutex_;
  std::list<std::weak_ptr<CancelToken>> active_tokens_;

  std::atomic<std::uint64_t> ewma_service_us_{500};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<unsigned> active_connections_{0};
};

}  // namespace ndet::serve
