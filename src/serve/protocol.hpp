// protocol.hpp -- the daemon's line-delimited JSON wire protocol.
//
// One request object per line in, one response object per line out.  The
// request schema (unknown keys are rejected so typos fail loudly):
//
//   {"id":1,"type":"worst_case","circuit":"bbtas","deadline_ms":50,
//    "max_inputs":20,"representation":"adaptive"}
//   {"id":2,"type":"average_case","circuit":"dk27","nmax":2,"num_sets":100,
//    "seed":7,"definition":"standard","def2_probe_limit":32}
//   {"id":3,"type":"partition","circuit":"bbara","budget":8,
//    "by_structure":true,"min_overlap":0.25}
//   {"id":4,"type":"stats"}
//   {"id":5,"type":"ping"}
//   {"id":6,"type":"health"}
//   {"id":7,"type":"worst_case","circuit":"keyb","priority":"batch"}
//
// Every field except "type" is optional ("circuit" is required for the
// three analysis types); defaults match the paper's CLIs.  "priority"
// ("interactive", the default, or "batch") selects the admission lane:
// under overload batch requests are shed first and dispatched last, so a
// flood of heavy batch sweeps cannot starve cheap interactive requests
// (serve/admission.hpp).  "health" is the load-balancer probe: its result
// reports the lifecycle state ("serving" | "draining" | "overloaded")
// plus the live queue depth.  Responses echo
// the id and type so pipelined clients can match them out of order:
//
//   {"id":1,"ok":true,"type":"worst_case","circuit":"bbtas",
//    "cache_hit":false,"elapsed_ms":1.9,"result":{...},"session":{...}}
//   {"id":2,"ok":false,"type":"average_case","error":{"kind":
//    "deadline_exceeded","stage":"worst_case","message":"..."},
//    "elapsed_ms":50.1}
//
// A shed request (admission queue full, connection cap, drain mode) is a
// typed failure, never a silent drop: kind "resource_exhausted" with a
// "retry_after_ms" hint inside the error object telling a well-behaved
// client how long to back off before resending.
//
// The "result" payload is spliced verbatim from the same to_json()
// serializers the report CLIs use, so a served analysis is bytewise
// identical to a direct AnalysisSession run.  See DESIGN.md "Analysis as a
// service" for the full schema.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/session.hpp"
#include "serve/admission.hpp"
#include "serve/session_cache.hpp"
#include "util/cancel.hpp"

namespace ndet::serve {

enum class RequestType {
  kWorstCase,
  kAverageCase,
  kPartition,
  kStats,
  kPing,
  kHealth,
};
inline constexpr std::size_t kNumRequestTypes = 6;

/// Stable wire name ("worst_case", ...).
const char* to_string(RequestType type);

/// Parses the "priority" wire value ("interactive" / "batch"); throws
/// Error{kInvalidInput} on anything else.
Priority parse_priority(const std::string& name);

/// One parsed request.
struct Request {
  std::uint64_t id = 0;
  RequestType type = RequestType::kPing;
  Priority priority = Priority::kInteractive;
  std::string circuit;
  std::uint64_t deadline_ms = 0;  ///< 0 = no per-request deadline
  CacheKey key;                   ///< circuit + result-relevant options
  int nmax = 10;                  ///< monitored threshold (average_case)
  Procedure1Request average;      ///< average_case parameters
  PartitionOptions partition;     ///< partition parameters
};

/// Parses one request line.  Throws Error{kInvalidInput} on malformed JSON
/// (with line/column context), unknown "type"/keys, or missing "circuit".
Request parse_request(const std::string& line);

/// Success envelope around a prebuilt result JSON value.
std::string ok_response(const Request& request, const std::string& result_json,
                        const SessionStats& session, bool cache_hit,
                        double elapsed_ms);

/// Session-less success envelope (stats/ping).
std::string ok_response(const Request& request, const std::string& result_json,
                        double elapsed_ms);

/// Failure envelope carrying the typed error taxonomy (kind, stage,
/// message).  `id`/`type_name` echo the request when it parsed far enough
/// ("unknown" for lines that never parsed).
std::string error_response(std::uint64_t id, std::string_view type_name,
                           const Error& e, double elapsed_ms);

/// Load-shedding envelope: a kResourceExhausted error response whose error
/// object additionally carries `"retry_after_ms"` -- the server's backoff
/// hint for a well-behaved retrying client.  Used for admission-queue
/// sheds, displaced batch work, the connection cap, and drain-mode
/// rejections; never for real analysis failures.
std::string shed_response(std::uint64_t id, std::string_view type_name,
                          const std::string& message,
                          std::uint64_t retry_after_ms);

/// True when the response line is a shed_response (the client-side retry
/// trigger: resource_exhausted carrying a retry hint).
bool is_shed_response(const std::string& response);

/// Extracts the retry hint from a shed_response (0 when absent).
std::uint64_t retry_after_ms_of(const std::string& response);

}  // namespace ndet::serve
