#include "serve/admission.hpp"

#include <utility>

namespace ndet::serve {

const char* to_string(Priority priority) {
  return priority == Priority::kBatch ? "batch" : "interactive";
}

AdmissionQueue::AdmissionQueue(std::size_t max_depth, std::size_t max_bytes)
    : max_depth_(max_depth), max_bytes_(max_bytes) {}

bool AdmissionQueue::fits_locked(std::size_t line_bytes) const {
  if (max_depth_ != 0 && stats_.depth + 1 > max_depth_) return false;
  if (max_bytes_ != 0 && stats_.bytes + line_bytes > max_bytes_) return false;
  return true;
}

bool AdmissionQueue::offer(AdmittedLine& line,
                           std::vector<AdmittedLine>* displaced) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto shed_offer = [&]() {
    if (line.priority == Priority::kInteractive)
      ++stats_.shed_interactive;
    else
      ++stats_.shed_batch;
  };
  if (closed_) {
    shed_offer();
    return false;
  }
  // Priority-honoring displacement: an interactive offer that does not fit
  // evicts the NEWEST batch entries until it does (reject-newest within
  // the lane that loses).  Batch offers never displace anything.
  while (!fits_locked(line.line.size()) &&
         line.priority == Priority::kInteractive && !batch_.empty()) {
    AdmittedLine victim = std::move(batch_.back());
    batch_.pop_back();
    --stats_.depth;
    stats_.bytes -= victim.line.size();
    ++stats_.displaced;
    ++stats_.shed_batch;
    if (displaced != nullptr) displaced->push_back(std::move(victim));
  }
  if (!fits_locked(line.line.size())) {
    shed_offer();
    return false;
  }
  line.sequence = ++sequence_;
  line.enqueued_at = std::chrono::steady_clock::now();
  ++stats_.depth;
  stats_.bytes += line.line.size();
  stats_.peak_depth = std::max(stats_.peak_depth, stats_.depth);
  ++stats_.admitted;
  (line.priority == Priority::kInteractive ? interactive_ : batch_)
      .push_back(std::move(line));
  lock.unlock();
  ready_.notify_one();
  return true;
}

bool AdmissionQueue::pop(AdmittedLine& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] {
    return !interactive_.empty() || !batch_.empty() || closed_;
  });
  std::deque<AdmittedLine>& lane =
      !interactive_.empty() ? interactive_ : batch_;
  if (lane.empty()) return false;  // closed and drained
  out = std::move(lane.front());
  lane.pop_front();
  --stats_.depth;
  stats_.bytes -= out.line.size();
  return true;
}

bool AdmissionQueue::try_pop(AdmittedLine& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::deque<AdmittedLine>& lane =
      !interactive_.empty() ? interactive_ : batch_;
  if (lane.empty()) return false;
  out = std::move(lane.front());
  lane.pop_front();
  --stats_.depth;
  stats_.bytes -= out.line.size();
  return true;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

AdmissionStats AdmissionQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_.depth;
}

}  // namespace ndet::serve
