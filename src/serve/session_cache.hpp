// session_cache.hpp -- the daemon's bounded, byte-accounted cross-circuit
// LRU of analysis sessions.
//
// A long-lived server cannot let sessions live as long as the caller: every
// circuit it has ever seen would pin its frozen DetectionDb forever.  The
// cache owns one AnalysisSession per distinct (circuit, result-relevant
// SessionOptions) key -- max_inputs and representation change results and
// storage, thread width and deadlines do not, so only the former key the
// cache -- and charges each entry EXACTLY its database's
// set_memory_bytes(), the same accounting the session facade reports.
// When the charged total exceeds the byte budget, least-recently-used
// unpinned entries are evicted; a later request for the same key rebuilds
// the session and, because every stage is a deterministic function of
// (circuit, options), reproduces bit-identical results.
//
// Concurrency: the cache map and counters sit behind one mutex that is
// never held across analysis work.  Each entry carries its own busy flag;
// a Lease holds it for the duration of one request, so concurrent requests
// for the SAME key serialize on the entry (sessions are externally
// synchronized) while requests for different keys run fully in parallel.
// Contended entries hand off by PRIORITY, not arrival: a batch-priority
// acquire waits not just for the entry to free but for every interactive
// waiter to go first, so a flood of heavy batch requests queued on one hot
// circuit cannot starve an interactive request for the same key (lease
// fairness mirrors the admission queue's lanes; within a priority the
// condition-variable handoff is unordered, which is fine -- equal work).
// Leases also pin their entry: an entry evicted while leased just leaves
// the map (the shared_ptr keeps the session alive until the lease drops),
// so eviction can never invalidate an in-flight request.
//
// Charging happens at update() time, after a request's stages ran -- the
// database is built lazily, so the admission-time charge of a fresh entry
// is zero and the real bytes land when the lease is updated.  update() is
// an explicit call (not the Lease destructor) because eviction carries a
// fault-injection site ("serve.cache_evict") that may throw, and
// destructors must not.  See DESIGN.md "Analysis as a service".

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "serve/admission.hpp"

namespace ndet::serve {

/// The result-relevant session key: two requests share a cached session iff
/// all three fields match (thread width and deadlines never change results
/// and are deliberately excluded).
struct CacheKey {
  std::string circuit;
  int max_inputs = 20;
  SetRepresentation representation = SetRepresentation::kAdaptive;

  bool operator==(const CacheKey&) const = default;
  bool operator<(const CacheKey& other) const {
    if (circuit != other.circuit) return circuit < other.circuit;
    if (max_inputs != other.max_inputs) return max_inputs < other.max_inputs;
    return static_cast<int>(representation) <
           static_cast<int>(other.representation);
  }
};

/// Cache telemetry; every counter is cumulative since construction except
/// bytes/entries, which are the current residency.
struct SessionCacheStats {
  std::uint64_t hits = 0;        ///< acquire served an existing entry
  std::uint64_t misses = 0;      ///< acquire admitted a fresh entry
  std::uint64_t evictions = 0;   ///< entries dropped under byte pressure
  std::size_t bytes = 0;         ///< charged total (== sum set_memory_bytes)
  std::size_t entries = 0;       ///< resident entries
  std::size_t budget_bytes = 0;  ///< the configured budget
};

class SessionCache {
 public:
  /// `budget_bytes` bounds the charged total (0 = unbounded); `base` is the
  /// option template every cached session is constructed from (the key
  /// fields override its max_inputs/representation per request).
  explicit SessionCache(std::size_t budget_bytes, SessionOptions base = {});

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  class Lease;

  /// Returns a lease on the key's session, admitting (and constructing) it
  /// on a miss.  Blocks while another lease holds the same entry; on a
  /// contended entry, interactive acquires are handed the lease before any
  /// waiting batch acquire (see the fairness note above).  Throws
  /// Error{kInvalidInput} when the circuit cannot be resolved (the entry is
  /// not admitted).
  Lease acquire(const CacheKey& key,
                Priority priority = Priority::kInteractive);

  /// Number of acquires currently blocked on the key's entry (telemetry
  /// and the fairness tests); 0 for unknown keys.
  int waiters(const CacheKey& key) const;

  /// Re-charges the leased entry to its session's current
  /// set_memory_bytes() and evicts least-recently-used unpinned entries
  /// until the charged total fits the budget again.  Call after a request's
  /// stages ran (success or abort -- a half-run request may still have
  /// built the database).  Fault-injection site "serve.cache_evict" fires
  /// here as Error{kResourceExhausted}.
  void update(const Lease& lease);

  /// Drops every unpinned entry (counted as evictions).
  void flush();

  SessionCacheStats stats() const;

  /// Resident circuit names in least-recently-used-first order (tests and
  /// the stats endpoint).
  std::vector<std::string> resident_lru_order() const;

  /// True when the key currently has a resident entry.
  bool contains(const CacheKey& key) const;

 private:
  struct Entry {
    CacheKey key;
    std::mutex mutex;               ///< guards busy/waiter handoff state
    std::condition_variable available;  ///< lease handoff (priority-aware)
    bool busy = false;              ///< a lease currently owns the session
    int interactive_waiters = 0;    ///< blocked interactive acquires
    int batch_waiters = 0;          ///< blocked batch acquires
    std::unique_ptr<AnalysisSession> session;  ///< built under lease on admit
    std::size_t charged = 0;        ///< bytes currently billed to the budget
    std::uint64_t last_use = 0;     ///< recency stamp (monotone counter)
    int pins = 0;                   ///< live leases (guarded by cache mutex)
    bool resident = true;           ///< false once evicted from the map
  };

  void evict_to_budget_locked();

  const std::size_t budget_bytes_;
  const SessionOptions base_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Entry>> entries_;  ///< resident set
  std::uint64_t use_counter_ = 0;
  SessionCacheStats stats_;

 public:
  /// RAII request-scoped handle: owns the entry's busy flag and pin.
  /// Movable, not copyable.  The destructor hands the entry to the next
  /// waiter (interactive first) and releases the pin only; byte accounting
  /// is the explicit update() call.
  class Lease {
   public:
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) = delete;
    ~Lease();

    AnalysisSession& session() const { return *entry_->session; }
    bool hit() const { return hit_; }
    const CacheKey& key() const { return entry_->key; }

   private:
    friend class SessionCache;
    Lease(SessionCache* cache, std::shared_ptr<Entry> entry, bool hit)
        : cache_(cache), entry_(std::move(entry)), hit_(hit) {}

    SessionCache* cache_;
    std::shared_ptr<Entry> entry_;
    bool hit_;
  };
};

}  // namespace ndet::serve
