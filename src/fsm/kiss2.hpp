// kiss2.hpp -- the KISS2 state-transition-table format of the MCNC
// finite-state-machine benchmarks.
//
// The paper's experiments run on "the combinational logic of MCNC
// finite-state machine benchmarks".  This module parses the KISS2 format so
// the same pipeline (STT -> encoded two-level logic -> gate netlist) can run
// on any machine, including the embedded reconstructions in benchmarks.hpp.
//
// Format (one term per line, '#' comments):
//   .i N   inputs      .o M  outputs     .p P  terms (optional)
//   .s S   states (optional)             .r S0 reset state (optional)
//   <input cube over {0,1,-}> <current> <next> <output cube over {0,1,-}>
//   .e     end (optional)

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ndet {

/// One row of the state transition table.
struct Kiss2Term {
  std::string input;    ///< length = num_inputs, chars in {0,1,-}
  std::string current;  ///< current-state name
  std::string next;     ///< next-state name
  std::string output;   ///< length = num_outputs, chars in {0,1,-}
};

/// A parsed KISS2 state machine.
struct Kiss2Fsm {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  std::vector<std::string> states;  ///< in order of first appearance
  std::string reset_state;          ///< empty when not declared
  std::vector<Kiss2Term> terms;

  /// Index of a state name in `states`; throws for unknown states.
  std::size_t state_index(const std::string& state) const;
};

/// Parses KISS2 text; throws contract_error with line info on bad input.
Kiss2Fsm parse_kiss2(const std::string& text, const std::string& name);

/// Serializes back to KISS2 (stable, includes .p/.s headers).
std::string write_kiss2(const Kiss2Fsm& fsm);

/// Evaluates the STT directly: given a state index and a fully specified
/// input (bit i = value of input i), returns the (next state index, output
/// bits) pair.  Unspecified combinations return (same state... no:) --
/// combinations matched by no term yield next state 0's encoding semantics;
/// here they return (state_count(), zeros) where state_count() acts as the
/// "no transition" marker.  Used as the oracle for synthesis tests.
struct SttEval {
  std::size_t next_state;            ///< == states.size() when unspecified
  std::vector<bool> outputs;         ///< '-' outputs evaluate to 0
  bool specified = false;
};
SttEval evaluate_stt(const Kiss2Fsm& fsm, std::size_t state,
                     const std::vector<bool>& inputs);

/// True when no two terms of the same state have overlapping input cubes
/// with conflicting next state or outputs.  Deterministic tables make
/// evaluate_stt an exact oracle for the synthesized circuit.
bool is_deterministic(const Kiss2Fsm& fsm);

}  // namespace ndet
