#include "fsm/synth.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace ndet {

namespace {

/// Reduces `nodes` to a single gate through a balanced tree of `type` gates
/// with at most `max_fanin` inputs (0 = unlimited).  Intermediate gates are
/// named <prefix>_t<counter>; the root keeps whatever name the caller gives
/// it, so the root is built by the caller from the returned operand list.
std::vector<GateId> reduce_to_root_operands(CircuitBuilder& builder,
                                            GateType type,
                                            std::vector<GateId> nodes,
                                            const std::string& prefix,
                                            int max_fanin,
                                            std::size_t& counter) {
  if (max_fanin < 2) return nodes;  // unlimited
  const auto fanin = static_cast<std::size_t>(max_fanin);
  while (nodes.size() > fanin) {
    std::vector<GateId> next;
    for (std::size_t begin = 0; begin < nodes.size(); begin += fanin) {
      const std::size_t end = std::min(begin + fanin, nodes.size());
      if (end - begin == 1) {
        next.push_back(nodes[begin]);
        continue;
      }
      next.push_back(builder.add_gate(
          type, prefix + "_t" + std::to_string(counter++),
          std::vector<GateId>(nodes.begin() + static_cast<std::ptrdiff_t>(begin),
                              nodes.begin() + static_cast<std::ptrdiff_t>(end))));
    }
    nodes = std::move(next);
  }
  return nodes;
}

}  // namespace

Circuit synthesize_fsm(const Kiss2Fsm& fsm, const SynthOptions& options) {
  const std::size_t num_inputs = static_cast<std::size_t>(fsm.num_inputs);
  const std::size_t num_outputs = static_cast<std::size_t>(fsm.num_outputs);
  const std::size_t num_states = fsm.states.size();
  const std::size_t width = encoding_width(num_states, options.encoding);
  const auto codes = encode_states(num_states, options.encoding);

  CircuitBuilder builder(fsm.name);

  std::vector<GateId> x(num_inputs), s(width);
  for (std::size_t i = 0; i < num_inputs; ++i)
    x[i] = builder.add_input("x" + std::to_string(i));
  for (std::size_t b = 0; b < width; ++b)
    s[b] = builder.add_input("s" + std::to_string(b));

  // Shared, lazily created inverters for negative literals.
  std::vector<GateId> not_x(num_inputs, kInvalidGate);
  std::vector<GateId> not_s(width, kInvalidGate);
  const auto inverted = [&](std::vector<GateId>& cache, std::size_t idx,
                            GateId base, const std::string& prefix) {
    if (cache[idx] == kInvalidGate)
      cache[idx] = builder.add_gate(GateType::kNot,
                                    prefix + std::to_string(idx) + "_n", {base});
    return cache[idx];
  };

  // Builds (or reuses) the product term of one STT row.
  std::map<std::string, GateId> term_cache;
  std::size_t term_counter = 0;
  const auto product_of = [&](const Kiss2Term& term) {
    const std::size_t state = fsm.state_index(term.current);
    const std::string key = term.input + "@" + std::to_string(state);
    if (options.share_product_terms) {
      const auto it = term_cache.find(key);
      if (it != term_cache.end()) return it->second;
    }
    std::vector<GateId> literals;
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const char c = term.input[i];
      if (c == '-') continue;
      literals.push_back(c == '1' ? x[i] : inverted(not_x, i, x[i], "x"));
    }
    if (options.encoding == StateEncoding::kOneHot) {
      // One-hot simplification: the asserted bit identifies the state.
      literals.push_back(s[state]);
    } else {
      for (std::size_t b = 0; b < width; ++b)
        literals.push_back(codes[state][b] ? s[b]
                                           : inverted(not_s, b, s[b], "s"));
    }
    GateId gate;
    if (literals.size() == 1) {
      gate = literals[0];  // single literal: no AND gate needed
    } else {
      const std::string name = "p" + std::to_string(term_counter++);
      std::size_t tree_counter = 0;
      literals = reduce_to_root_operands(builder, GateType::kAnd, literals,
                                         name, options.max_fanin, tree_counter);
      gate = literals.size() == 1
                 ? builder.add_gate(GateType::kBuf, name, literals)
                 : builder.add_gate(GateType::kAnd, name, literals);
    }
    if (options.share_product_terms) term_cache.emplace(key, gate);
    return gate;
  };

  // Collect the product terms driving every output / next-state bit.
  std::vector<std::vector<GateId>> output_terms(num_outputs);
  std::vector<std::vector<GateId>> next_terms(width);
  for (const Kiss2Term& term : fsm.terms) {
    const GateId product = product_of(term);
    for (std::size_t o = 0; o < num_outputs; ++o)
      if (term.output[o] == '1') output_terms[o].push_back(product);
    const std::size_t next = fsm.state_index(term.next);
    for (std::size_t b = 0; b < width; ++b)
      if (codes[next][b]) next_terms[b].push_back(product);
  }

  const auto emit_or = [&](const std::string& name,
                           std::vector<GateId> terms) {
    // Duplicate products (shared cubes listed twice for one output) would
    // make a degenerate OR; deduplicate first.
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    GateId gate;
    if (terms.empty()) {
      gate = builder.add_const(false, name);
    } else if (terms.size() == 1) {
      gate = builder.add_gate(GateType::kBuf, name, {terms[0]});
    } else {
      std::size_t tree_counter = 0;
      terms = reduce_to_root_operands(builder, GateType::kOr, terms, name,
                                      options.max_fanin, tree_counter);
      gate = terms.size() == 1
                 ? builder.add_gate(GateType::kBuf, name, terms)
                 : builder.add_gate(GateType::kOr, name, terms);
    }
    builder.mark_output(gate);
  };

  for (std::size_t o = 0; o < num_outputs; ++o)
    emit_or("o" + std::to_string(o), output_terms[o]);
  for (std::size_t b = 0; b < width; ++b)
    emit_or("ns" + std::to_string(b), next_terms[b]);

  return builder.build();
}

}  // namespace ndet
