#include "fsm/encoding.hpp"

#include "util/check.hpp"

namespace ndet {

std::size_t encoding_width(std::size_t num_states, StateEncoding encoding) {
  require(num_states >= 1, "encoding_width: need at least one state");
  if (encoding == StateEncoding::kOneHot) return num_states;
  std::size_t width = 1;
  while ((std::size_t{1} << width) < num_states) ++width;
  return width;
}

std::vector<std::vector<bool>> encode_states(std::size_t num_states,
                                             StateEncoding encoding) {
  const std::size_t width = encoding_width(num_states, encoding);
  std::vector<std::vector<bool>> codes(num_states,
                                       std::vector<bool>(width, false));
  for (std::size_t s = 0; s < num_states; ++s) {
    std::size_t value = s;
    if (encoding == StateEncoding::kGray) value = s ^ (s >> 1);
    for (std::size_t b = 0; b < width; ++b) {
      if (encoding == StateEncoding::kOneHot) {
        codes[s][b] = (b == s);
      } else {
        // Bit 0 is the most significant bit of the code.
        codes[s][b] = (value >> (width - 1 - b)) & 1u;
      }
    }
  }
  return codes;
}

}  // namespace ndet
