// synth.hpp -- two-level synthesis of KISS2 machines to gate netlists.
//
// The combinational logic extracted from an FSM has
//   inputs : the machine's primary inputs x0.., then the state bits s0..
//   outputs: the machine's primary outputs o0.., then the next-state bits
// Each STT term becomes a product term: an AND over the specified input
// literals and the full current-state code (one-hot encodings use only the
// single asserted state bit, the usual one-hot simplification).  Identical
// product terms are shared across outputs.  Each output / next-state bit is
// the OR of its product terms ('-' output bits synthesize as 0; bits with no
// terms become constant 0).
//
// This mirrors the STT -> encoded two-level logic -> netlist pipeline the
// paper's experimental setup implies for "the combinational logic of MCNC
// finite-state machine benchmarks" (see DESIGN.md, substitution table).

#pragma once

#include "fsm/encoding.hpp"
#include "fsm/kiss2.hpp"
#include "netlist/circuit.hpp"

namespace ndet {

/// Synthesis options.
struct SynthOptions {
  StateEncoding encoding = StateEncoding::kBinary;
  bool share_product_terms = true;  ///< merge identical AND cubes
  /// Maximum gate fanin after technology mapping: wider AND/OR planes are
  /// decomposed into balanced trees of gates with at most this many inputs
  /// (0 = unlimited, i.e. raw two-level logic).  The default of 4 mimics the
  /// mapped multi-level netlists the paper's benchmark flow produced --
  /// without it every bridging fault's detection condition is dominated by
  /// a single hyper-specific branch fault and the worst-case analysis
  /// degenerates to nmin = 1 everywhere (see DESIGN.md).
  int max_fanin = 4;
};

/// Synthesizes the FSM's combinational logic.  The circuit is named after
/// the machine; inputs are "x<i>" then "s<b>", outputs "o<j>" then "ns<b>".
Circuit synthesize_fsm(const Kiss2Fsm& fsm, const SynthOptions& options = {});

}  // namespace ndet
