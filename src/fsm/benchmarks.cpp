#include "fsm/benchmarks.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/library.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ndet {

namespace {

// ---------------------------------------------------------------------------
// Hand-written reconstructions of the small classics.
// ---------------------------------------------------------------------------

/// lion: 2 sensor inputs, 1 output, 4 states.  A cage-boundary tracker: the
/// two sensors move the lion between compartments; the output flags the far
/// compartment.
constexpr const char* kLion = R"(.i 2
.o 1
.s 4
.r st0
00 st0 st0 0
01 st0 st1 0
10 st0 st0 0
11 st0 st0 0
00 st1 st1 0
01 st1 st2 0
10 st1 st0 0
11 st1 st1 0
00 st2 st2 0
01 st2 st3 0
10 st2 st1 0
11 st2 st2 0
00 st3 st3 1
01 st3 st3 1
10 st3 st2 1
11 st3 st3 1
.e
)";

/// train4: 2 track sensors, 1 output, 4 states; a train direction tracker.
constexpr const char* kTrain4 = R"(.i 2
.o 1
.s 4
.r stA
00 stA stA 0
01 stA stB 0
10 stA stD 0
11 stA stA 0
00 stB stB 1
01 stB stC 1
10 stB stA 1
11 stB stB 1
00 stC stC 1
01 stC stD 1
10 stC stB 1
11 stC stC 1
00 stD stD 0
01 stD stA 0
10 stD stC 0
11 stD stD 0
.e
)";

/// mc: 3 inputs, 5 outputs, 4 states; a small mode controller whose outputs
/// are the one-hot phase plus a ready flag.
constexpr const char* kMc = R"(.i 3
.o 5
.s 4
.r halt
0-- halt halt 10000
1-- halt load 10001
0-- load load 01000
10- load run  01001
11- load halt 01000
-0- run  run  00100
-10 run  done 00101
-11 run  halt 00100
--0 done halt 00011
--1 done done 00010
.e
)";

/// modulo12: 1 input, 1 output, 12 states; counts input pulses mod 12 and
/// raises the output in the last state.
std::string modulo12_text() {
  std::ostringstream os;
  os << ".i 1\n.o 1\n.s 12\n.r s0\n";
  for (int k = 0; k < 12; ++k) {
    const std::string out = k == 11 ? "1" : "0";
    os << "0 s" << k << " s" << k << " " << out << "\n";
    os << "1 s" << k << " s" << (k + 1) % 12 << " " << out << "\n";
  }
  os << ".e\n";
  return os.str();
}

/// dk27: 1 input, 2 outputs, 7 states; a Donald-Knuth-style exercise
/// machine: a walk over seven states with two phase outputs.
constexpr const char* kDk27 = R"(.i 1
.o 2
.s 7
.r s0
0 s0 s1 00
1 s0 s3 00
0 s1 s2 01
1 s1 s4 01
0 s2 s0 10
1 s2 s5 10
0 s3 s4 00
1 s3 s6 01
0 s4 s5 01
1 s4 s0 10
0 s5 s6 10
1 s5 s1 11
0 s6 s0 11
1 s6 s2 11
.e
)";

/// bbtas: 2 inputs, 2 outputs, 6 states; a bus arbiter flavoured machine.
std::string bbtas_text() {
  std::ostringstream os;
  os << ".i 2\n.o 2\n.s 6\n.r s0\n";
  // Deterministic and complete: each state has all four input combinations.
  // Grant pattern: output encodes the granted requester of the *current*
  // state; requests move the token forward, idle decays it toward s0.
  const char* outs[6] = {"00", "01", "01", "10", "10", "11"};
  for (int k = 0; k < 6; ++k) {
    os << "00 s" << k << " s" << std::max(0, k - 1) << " " << outs[k] << "\n";
    os << "01 s" << k << " s" << (k + 1) % 6 << " " << outs[k] << "\n";
    os << "10 s" << k << " s" << (k + 2) % 6 << " " << outs[k] << "\n";
    os << "11 s" << k << " s" << k << " " << outs[k] << "\n";
  }
  os << ".e\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Synthetic suite entries.  Interface signatures (inputs/outputs/states)
// follow the published MCNC/LGSynth counts; term counts and the redundancy
// knob are calibrated so the synthesized netlists land near the paper's
// per-circuit bridging-fault counts and coverage regimes (see DESIGN.md and
// EXPERIMENTS.md):
//   * the "small" group (100% coverage at small n): no redundant cover;
//   * the "tail" group (bbara..cse): moderate redundant cover, which leaves
//     a few percent of faults above nmin = 10;
//   * the "heavy" group (dvram, fetch, log, rie, s1a): maximal redundant
//     cover with uniform states, producing the saturating coverage and very
//     large nmin values of the paper's industrial machines.
// ---------------------------------------------------------------------------

struct SyntheticSpec {
  const char* name;
  int inputs;
  int outputs;
  int states;
  std::size_t terms;
  std::uint64_t seed;
  unsigned bias_permille;
  unsigned redundancy_permille;
  int fanin;  ///< technology-mapping fanin for this machine
};

constexpr SyntheticSpec kSynthetic[] = {
    {"ex5", 2, 2, 9, 18, 1005, 350, 250, 4},
    {"dk15", 3, 5, 4, 16, 1006, 350, 250, 4},
    {"dk512", 1, 3, 15, 30, 1007, 350, 250, 4},
    {"dk14", 3, 5, 7, 24, 1008, 350, 200, 4},
    {"dk17", 2, 3, 8, 20, 1009, 350, 250, 4},
    {"firstex", 3, 3, 6, 12, 1010, 350, 250, 4},
    {"lion9", 2, 1, 9, 18, 1011, 400, 300, 4},
    {"dk16", 2, 3, 27, 60, 1012, 300, 150, 4},
    {"s8", 4, 1, 5, 12, 1013, 300, 300, 4},
    {"tav", 4, 4, 4, 10, 1014, 300, 300, 4},
    {"donfile", 2, 1, 24, 48, 1015, 300, 150, 4},
    {"ex7", 2, 2, 10, 20, 1016, 300, 250, 4},
    {"train11", 2, 1, 11, 22, 1017, 400, 300, 4},
    {"beecount", 3, 4, 7, 16, 1018, 300, 500, 4},
    {"ex2", 2, 2, 19, 56, 1019, 300, 400, 4},
    {"ex3", 2, 2, 10, 24, 1020, 300, 400, 4},
    {"ex6", 5, 8, 8, 20, 1021, 400, 500, 4},
    {"mark1", 5, 16, 15, 24, 1022, 300, 600, 4},
    {"bbara", 4, 2, 10, 24, 1023, 500, 800, 4},
    {"ex4", 6, 9, 14, 20, 1024, 300, 700, 5},
    {"keyb", 7, 2, 19, 40, 1025, 400, 600, 5},
    {"opus", 5, 6, 10, 18, 1026, 400, 700, 4},
    {"bbsse", 7, 7, 16, 30, 1027, 400, 700, 5},
    {"cse", 7, 7, 16, 36, 1028, 400, 600, 5},
    {"dvram", 8, 6, 32, 40, 1029, 600, 1000, 6},
    {"fetch", 8, 12, 26, 32, 1030, 600, 1000, 6},
    {"log", 8, 10, 17, 28, 1031, 600, 1000, 6},
    {"rie", 8, 8, 29, 36, 1032, 600, 1000, 6},
    {"s1a", 8, 6, 20, 36, 1033, 600, 1000, 6},
};

const SyntheticSpec* find_synthetic(const std::string& name) {
  for (const SyntheticSpec& spec : kSynthetic)
    if (name == spec.name) return &spec;
  return nullptr;
}

}  // namespace

Kiss2Fsm synthetic_fsm(const std::string& name, int inputs, int outputs,
                       int states, std::size_t target_terms,
                       std::uint64_t seed, unsigned bias_permille,
                       unsigned redundancy_permille) {
  require(inputs >= 1 && outputs >= 1 && states >= 1,
          "synthetic_fsm: counts must be positive");
  require(target_terms >= static_cast<std::size_t>(states),
          "synthetic_fsm: need at least one term per state");
  Rng rng(seed);

  // Depth: each state partitions the input space into 2^depth cubes; choose
  // the depth that approximates the published term count.
  const double per_state =
      static_cast<double>(target_terms) / static_cast<double>(states);
  const int base_depth = std::min(
      inputs, std::max(0, static_cast<int>(std::lround(std::log2(per_state)))));

  Kiss2Fsm fsm;
  fsm.name = name;
  fsm.num_inputs = inputs;
  fsm.num_outputs = outputs;
  for (int s = 0; s < states; ++s) fsm.states.push_back("s" + std::to_string(s));
  fsm.reset_state = "s0";

  for (int s = 0; s < states; ++s) {
    // Jitter the depth per state so term counts are not uniform.
    int depth = base_depth;
    if (depth + 1 <= inputs && rng.chance(1, 3)) ++depth;
    else if (depth > 0 && rng.chance(1, 4)) --depth;

    // Heavily redundant machines: some states behave uniformly (the same
    // next state and outputs on every input) while still being described by
    // a full partition of specific cubes; the cascaded merge below then
    // covers them with progressively wider redundant products, masking the
    // specific cubes' faults completely.  This is the structure that gives
    // the paper's industrial machines their nmin tails in the hundreds.
    const bool uniform_state =
        redundancy_permille > 500 && rng.chance(redundancy_permille - 500, 1000);

    // Choose `depth` distinct input positions to specify.
    std::vector<int> positions;
    while (static_cast<int>(positions.size()) < depth) {
      const int p = static_cast<int>(rng.below(static_cast<std::uint64_t>(inputs)));
      if (std::find(positions.begin(), positions.end(), p) == positions.end())
        positions.push_back(p);
    }

    std::vector<Kiss2Term> state_terms;
    std::string previous_next;
    std::string previous_output;
    for (std::uint64_t combo = 0; combo < (std::uint64_t{1} << depth); ++combo) {
      Kiss2Term term;
      term.input.assign(static_cast<std::size_t>(inputs), '-');
      for (int b = 0; b < depth; ++b)
        term.input[static_cast<std::size_t>(positions[static_cast<std::size_t>(b)])] =
            ((combo >> b) & 1u) ? '1' : '0';
      term.current = fsm.states[static_cast<std::size_t>(s)];
      // Correlating adjacent cubes' behaviour (next state and outputs) makes
      // real tables' structure -- and creates the mergeable sibling pairs
      // the redundant-cover pass below feeds on.
      if (!previous_next.empty() && (uniform_state || rng.chance(1, 2)))
        term.next = previous_next;
      else term.next = fsm.states[rng.below(static_cast<std::uint64_t>(states))];
      previous_next = term.next;
      if (!previous_output.empty() && (uniform_state || rng.chance(2, 3))) {
        term.output = previous_output;
      } else {
        term.output.resize(static_cast<std::size_t>(outputs));
        for (int o = 0; o < outputs; ++o)
          term.output[static_cast<std::size_t>(o)] =
              rng.chance(bias_permille, 1000) ? '1' : '0';
      }
      previous_output = term.output;
      state_terms.push_back(std::move(term));
    }

    // Consistent redundant cover: cubes differing in exactly one specified
    // input that agree on next state and outputs may also be covered by
    // their merged cube, cascading into progressively wider covers.  The
    // overlaps agree everywhere, so the table stays deterministic and the
    // function is unchanged -- only the synthesized OR planes gain redundant
    // products (see header comment).
    if (redundancy_permille > 0) {
      const auto try_merge = [](const Kiss2Term& ta,
                                const Kiss2Term& tb) -> std::optional<Kiss2Term> {
        if (ta.next != tb.next || ta.output != tb.output) return std::nullopt;
        int differing = -1;
        for (std::size_t p = 0; p < ta.input.size(); ++p) {
          if (ta.input[p] == tb.input[p]) continue;
          if (ta.input[p] == '-' || tb.input[p] == '-') return std::nullopt;
          if (differing >= 0) return std::nullopt;
          differing = static_cast<int>(p);
        }
        if (differing < 0) return std::nullopt;
        Kiss2Term merged = ta;
        merged.input[static_cast<std::size_t>(differing)] = '-';
        return merged;
      };
      std::vector<Kiss2Term> layer = state_terms;
      std::vector<Kiss2Term> extra;
      while (!layer.empty() && extra.size() < state_terms.size() * 2) {
        std::vector<Kiss2Term> next_layer;
        for (std::size_t a = 0; a < layer.size(); ++a) {
          for (std::size_t b = a + 1; b < layer.size(); ++b) {
            const auto merged = try_merge(layer[a], layer[b]);
            if (!merged) continue;
            if (!rng.chance(redundancy_permille, 1000)) continue;
            const auto duplicate = [&](const std::vector<Kiss2Term>& pool) {
              for (const auto& t : pool)
                if (t.input == merged->input && t.next == merged->next &&
                    t.output == merged->output)
                  return true;
              return false;
            };
            if (duplicate(next_layer) || duplicate(extra)) continue;
            next_layer.push_back(*merged);
          }
        }
        for (const auto& t : next_layer) extra.push_back(t);
        layer = std::move(next_layer);
      }
      for (auto& term : extra) state_terms.push_back(std::move(term));
    }
    for (auto& term : state_terms) fsm.terms.push_back(std::move(term));
  }
  return fsm;
}

const std::vector<FsmBenchmarkInfo>& fsm_benchmark_suite() {
  static const std::vector<FsmBenchmarkInfo> suite = [] {
    std::vector<FsmBenchmarkInfo> entries;
    const auto add = [&entries](const std::string& name, bool handwritten) {
      const Kiss2Fsm fsm = fsm_benchmark(name);
      entries.push_back(FsmBenchmarkInfo{name, fsm.num_inputs, fsm.num_outputs,
                                         static_cast<int>(fsm.states.size()),
                                         handwritten});
    };
    // Paper Table 2 order (grouped by the n reaching 100% in the paper).
    add("lion", true);
    add("dk27", true);
    add("ex5", false);
    add("train4", true);
    add("bbtas", true);
    add("dk15", false);
    add("dk512", false);
    add("dk14", false);
    add("dk17", false);
    add("firstex", false);
    add("lion9", false);
    add("mc", true);
    add("dk16", false);
    add("modulo12", true);
    add("s8", false);
    add("tav", false);
    add("donfile", false);
    add("ex7", false);
    add("train11", false);
    add("beecount", false);
    add("ex2", false);
    add("ex3", false);
    add("ex6", false);
    add("mark1", false);
    add("bbara", false);
    add("ex4", false);
    add("keyb", false);
    add("opus", false);
    add("bbsse", false);
    add("cse", false);
    add("dvram", false);
    add("fetch", false);
    add("log", false);
    add("rie", false);
    add("s1a", false);
    return entries;
  }();
  return suite;
}

Kiss2Fsm fsm_benchmark(const std::string& name) {
  if (name == "lion") return parse_kiss2(kLion, name);
  if (name == "train4") return parse_kiss2(kTrain4, name);
  if (name == "mc") return parse_kiss2(kMc, name);
  if (name == "modulo12") return parse_kiss2(modulo12_text(), name);
  if (name == "dk27") return parse_kiss2(kDk27, name);
  if (name == "bbtas") return parse_kiss2(bbtas_text(), name);
  if (const SyntheticSpec* spec = find_synthetic(name))
    return synthetic_fsm(spec->name, spec->inputs, spec->outputs, spec->states,
                         spec->terms, spec->seed, spec->bias_permille,
                         spec->redundancy_permille);
  throw contract_error("fsm_benchmark: unknown machine '" + name + "'");
}

Circuit fsm_benchmark_circuit(const std::string& name, StateEncoding encoding) {
  SynthOptions options;
  options.encoding = encoding;
  if (const SyntheticSpec* spec = find_synthetic(name))
    options.max_fanin = spec->fanin;
  return synthesize_fsm(fsm_benchmark(name), options);
}

Circuit resolve_circuit(const std::string& name) {
  for (const FsmBenchmarkInfo& info : fsm_benchmark_suite())
    if (info.name == name) return fsm_benchmark_circuit(name);
  for (const std::string& lib : combinational_library_names())
    if (lib == name) return combinational_library(name);
  const bool bench_path =
      (name.size() > 6 && name.substr(name.size() - 6) == ".bench") ||
      name.find('/') != std::string::npos;
  if (bench_path) return read_bench_file(name);
  throw contract_error(
      "unknown circuit '" + name +
      "' (expected an FSM benchmark, an embedded circuit, or a .bench path)");
}

}  // namespace ndet
