#include "fsm/kiss2.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace ndet {

std::size_t Kiss2Fsm::state_index(const std::string& state) const {
  const auto it = std::find(states.begin(), states.end(), state);
  require(it != states.end(), "Kiss2Fsm: unknown state '" + state + "'");
  return static_cast<std::size_t>(it - states.begin());
}

namespace {

[[noreturn]] void fail(const std::string& name, int line,
                       const std::string& message) {
  throw contract_error("KISS2 parse error in '" + name + "' line " +
                       std::to_string(line) + ": " + message);
}

bool is_cube(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return c == '0' || c == '1' || c == '-'; });
}

}  // namespace

Kiss2Fsm parse_kiss2(const std::string& text, const std::string& name) {
  Kiss2Fsm fsm;
  fsm.name = name;
  int declared_terms = -1;
  int declared_states = -1;

  const auto note_state = [&fsm](const std::string& s) {
    if (std::find(fsm.states.begin(), fsm.states.end(), s) == fsm.states.end())
      fsm.states.push_back(s);
  };

  std::istringstream stream(text);
  std::string raw;
  int line_number = 0;
  bool ended = false;
  const auto reject_trailing = [&](std::istringstream& line,
                                   const std::string& what) {
    std::string extra;
    if (line >> extra)
      fail(name, line_number,
           "trailing token '" + extra + "' after " + what);
  };
  while (std::getline(stream, raw)) {
    ++line_number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string first;
    if (!(line >> first)) continue;
    if (ended) fail(name, line_number, "content after .e");

    if (first == ".i" || first == ".o" || first == ".p" || first == ".s") {
      int value = 0;
      if (!(line >> value) || value <= 0)
        fail(name, line_number, "directive " + first + " needs a positive count");
      reject_trailing(line, "directive " + first);
      if (first == ".i") {
        if (fsm.num_inputs > 0) fail(name, line_number, "duplicate directive .i");
        fsm.num_inputs = value;
      } else if (first == ".o") {
        if (fsm.num_outputs > 0)
          fail(name, line_number, "duplicate directive .o");
        fsm.num_outputs = value;
      } else if (first == ".p") {
        if (declared_terms >= 0) fail(name, line_number, "duplicate directive .p");
        declared_terms = value;
      } else {
        if (declared_states >= 0)
          fail(name, line_number, "duplicate directive .s");
        declared_states = value;
      }
      continue;
    }
    if (first == ".r") {
      if (!fsm.reset_state.empty())
        fail(name, line_number, "duplicate directive .r");
      if (!(line >> fsm.reset_state))
        fail(name, line_number, ".r needs a state name");
      reject_trailing(line, "directive .r");
      continue;
    }
    if (first == ".e" || first == ".end") {
      reject_trailing(line, "directive " + first);
      ended = true;
      continue;
    }
    if (first[0] == '.') fail(name, line_number, "unknown directive " + first);

    Kiss2Term term;
    term.input = first;
    if (!(line >> term.current >> term.next >> term.output))
      fail(name, line_number, "term needs: input current next output");
    reject_trailing(line, "term");
    if (fsm.num_inputs == 0 || fsm.num_outputs == 0)
      fail(name, line_number, ".i and .o must precede terms");
    if (static_cast<int>(term.input.size()) != fsm.num_inputs ||
        !is_cube(term.input))
      fail(name, line_number, "bad input cube '" + term.input + "'");
    if (static_cast<int>(term.output.size()) != fsm.num_outputs ||
        !is_cube(term.output))
      fail(name, line_number, "bad output cube '" + term.output + "'");
    note_state(term.current);
    note_state(term.next);
    fsm.terms.push_back(std::move(term));
  }

  require(fsm.num_inputs > 0, "KISS2 '" + name + "': missing .i");
  require(fsm.num_outputs > 0, "KISS2 '" + name + "': missing .o");
  require(!fsm.terms.empty(), "KISS2 '" + name + "': no terms");
  if (declared_terms >= 0 &&
      declared_terms != static_cast<int>(fsm.terms.size()))
    throw contract_error("KISS2 '" + name + "': .p declares " +
                         std::to_string(declared_terms) + " terms but " +
                         std::to_string(fsm.terms.size()) + " were given");
  if (declared_states >= 0 &&
      declared_states != static_cast<int>(fsm.states.size()))
    throw contract_error("KISS2 '" + name + "': .s declares " +
                         std::to_string(declared_states) + " states but " +
                         std::to_string(fsm.states.size()) + " appear");
  if (!fsm.reset_state.empty()) fsm.state_index(fsm.reset_state);
  return fsm;
}

std::string write_kiss2(const Kiss2Fsm& fsm) {
  std::ostringstream os;
  os << "# " << fsm.name << "\n.i " << fsm.num_inputs << "\n.o "
     << fsm.num_outputs << "\n.p " << fsm.terms.size() << "\n.s "
     << fsm.states.size() << "\n";
  if (!fsm.reset_state.empty()) os << ".r " << fsm.reset_state << "\n";
  for (const Kiss2Term& term : fsm.terms)
    os << term.input << ' ' << term.current << ' ' << term.next << ' '
       << term.output << '\n';
  os << ".e\n";
  return os.str();
}

SttEval evaluate_stt(const Kiss2Fsm& fsm, std::size_t state,
                     const std::vector<bool>& inputs) {
  require(state < fsm.states.size(), "evaluate_stt: state out of range");
  require(static_cast<int>(inputs.size()) == fsm.num_inputs,
          "evaluate_stt: wrong input count");
  SttEval eval;
  eval.next_state = fsm.states.size();
  eval.outputs.assign(static_cast<std::size_t>(fsm.num_outputs), false);

  const std::string& current = fsm.states[state];
  for (const Kiss2Term& term : fsm.terms) {
    if (term.current != current) continue;
    bool match = true;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const char c = term.input[i];
      if (c == '-') continue;
      if ((c == '1') != inputs[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    // Deterministic tables have at most one matching term; when several
    // match (overlapping cubes emitting the same behaviour are legal in
    // KISS2), outputs accumulate disjunctively, mirroring the synthesized
    // OR-plane, and the first matching term decides the next state.
    if (!eval.specified) {
      eval.next_state = fsm.state_index(term.next);
      eval.specified = true;
    }
    for (std::size_t o = 0; o < eval.outputs.size(); ++o)
      if (term.output[o] == '1') eval.outputs[o] = true;
  }
  return eval;
}

bool is_deterministic(const Kiss2Fsm& fsm) {
  const auto cubes_overlap = [](const std::string& a, const std::string& b) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
    return true;
  };
  for (std::size_t i = 0; i < fsm.terms.size(); ++i) {
    for (std::size_t j = i + 1; j < fsm.terms.size(); ++j) {
      const Kiss2Term& a = fsm.terms[i];
      const Kiss2Term& b = fsm.terms[j];
      if (a.current != b.current) continue;
      if (!cubes_overlap(a.input, b.input)) continue;
      if (a.next != b.next || a.output != b.output) return false;
    }
  }
  return true;
}

}  // namespace ndet
