// benchmarks.hpp -- the embedded FSM benchmark suite.
//
// The paper evaluates on the combinational logic of MCNC finite-state
// machine benchmarks.  The original KISS2 sources are not redistributable
// here, so the suite is rebuilt (see DESIGN.md, substitution table):
//
//   * a handful of small classics are *hand-written reconstructions* --
//     deterministic machines with the published interface signature
//     (inputs/outputs/states) and a faithful flavour of the original's
//     behaviour (counters, cage trackers, controllers);
//   * the remaining machines are *seeded synthetic tables* matching the
//     published signature: for every state the input space is partitioned
//     into random cubes, each with a random next state and biased random
//     outputs.  Generation is deterministic in the name's fixed seed.
//
// Circuits keep the paper's benchmark names so the bench tables line up
// side by side with the paper's tables; EXPERIMENTS.md marks every row of
// ours as a reconstruction.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsm/kiss2.hpp"
#include "fsm/synth.hpp"
#include "netlist/circuit.hpp"

namespace ndet {

/// Catalog entry for one benchmark machine.
struct FsmBenchmarkInfo {
  std::string name;
  int inputs = 0;
  int outputs = 0;
  int states = 0;
  bool handwritten = false;  ///< hand-written reconstruction vs synthetic
};

/// The full suite in the paper's Table 2 order (grouped by the smallest n
/// reaching 100% worst-case coverage in the paper).
const std::vector<FsmBenchmarkInfo>& fsm_benchmark_suite();

/// Looks up a machine by name and returns its STT.
Kiss2Fsm fsm_benchmark(const std::string& name);

/// Convenience: synthesize a suite machine's combinational logic.
Circuit fsm_benchmark_circuit(const std::string& name,
                              StateEncoding encoding = StateEncoding::kBinary);

/// The shared circuit lookup of every CLI (examples and bench harnesses):
/// a suite machine (binary encoding), an embedded combinational circuit,
/// or a path to a .bench file (recognized by a ".bench" suffix or a path
/// separator).  Any other name throws a contract_error listing the
/// accepted forms, so typos get a curated message instead of a file-open
/// failure.
Circuit resolve_circuit(const std::string& name);

/// Deterministic synthetic machine generator (exposed for tests and
/// ablations).  For every state the input space is partitioned into
/// 2^depth cubes over `depth` randomly chosen inputs (depth derived from
/// target_terms); outputs are 1 with probability bias_permille/1000.
///
/// `redundancy_permille` adds *consistent redundant cover*: sibling cubes
/// (differing in one specified input) that agree on next state and outputs
/// are, with this probability, additionally covered by their merged cube as
/// an extra term.  The machine's function is unchanged (the overlap agrees
/// everywhere, so the table stays deterministic), but the synthesized OR
/// planes gain genuinely redundant products.  This emulates the
/// masking-heavy structure of the paper's industrial machines (dvram,
/// fetch, log, rie, s1a), whose bridging faults exhibit worst-case nmin in
/// the hundreds; without it a partitioned cover activates exactly one
/// product per OR and the heavy tail cannot occur (DESIGN.md).
Kiss2Fsm synthetic_fsm(const std::string& name, int inputs, int outputs,
                       int states, std::size_t target_terms,
                       std::uint64_t seed, unsigned bias_permille = 300,
                       unsigned redundancy_permille = 0);

}  // namespace ndet
