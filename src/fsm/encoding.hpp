// encoding.hpp -- state assignments for FSM synthesis.
//
// The paper does not pin down the state encoding its synthesis used; the
// default here is minimal-length binary in state order.  Gray and one-hot
// are provided for the encoding-sensitivity ablation bench
// (bench/ablation_encoding), which quantifies how much the nmin
// distribution of the synthesized combinational logic depends on this
// choice.

#pragma once

#include <cstddef>
#include <vector>

namespace ndet {

/// Available state assignments.
enum class StateEncoding { kBinary, kGray, kOneHot };

/// Number of state bits used by an encoding.
std::size_t encoding_width(std::size_t num_states, StateEncoding encoding);

/// Code of every state: codes[s][b] is bit b of state s.  Bit 0 is the most
/// significant state bit (matching the input-vector convention).
std::vector<std::vector<bool>> encode_states(std::size_t num_states,
                                             StateEncoding encoding);

}  // namespace ndet
